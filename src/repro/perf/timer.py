"""Stage-level instrumentation for the compression pipeline.

The pipeline modules (:mod:`repro.core.compressor`,
:mod:`repro.core.wavefront`, :mod:`repro.core.stream`,
:mod:`repro.encoding.huffman`) call :func:`stage` around their hot
sections.  When no :class:`StageTimer` is active this is a near-free
no-op (one context-variable read), so production code pays nothing; a
benchmark or profiling caller activates a timer and receives a per-stage
breakdown of wall time, bytes processed and derived MB/s.

Stages nest: a stage entered while another is open records under the
slash-joined path (``compress/quantize``), which keeps one flat dict per
timer while preserving the call hierarchy — exactly the shape the bench
report and the CI perf gate consume.

The same :func:`stage` call also feeds the span tracer: when a
:class:`repro.obs.Collector` is active, every stage is recorded as a
span in its tree (with the byte count as an attribute), so the flat
aggregate view and the full trace come from one instrumentation point.
Either side may be active without the other; with neither, the hook
remains a near-free no-op (two context-variable reads).

>>> with StageTimer() as t:
...     with stage("outer", nbytes=8):
...         with stage("inner"):
...             pass
>>> sorted(t.records)
['outer', 'outer/inner']
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.tracer import _ACTIVE as _OBS_ACTIVE

if TYPE_CHECKING:
    from repro.obs.tracer import Collector

__all__ = ["StageRecord", "StageTimer", "stage", "active_timer"]

_ACTIVE: ContextVar["StageTimer | None"] = ContextVar(
    "repro_perf_active_timer", default=None
)


@dataclass
class StageRecord:
    """Aggregate for one stage path."""

    calls: int = 0
    seconds: float = 0.0
    nbytes: int = 0

    @property
    def mb_per_s(self) -> float:
        """Throughput over the recorded bytes (0.0 when unmeasurable)."""
        if self.seconds <= 0.0 or self.nbytes <= 0:
            return 0.0
        return self.nbytes / self.seconds / 1e6

    def as_dict(self) -> dict[str, float]:
        return {
            "calls": self.calls,
            "seconds": self.seconds,
            "bytes": self.nbytes,
            "mb_per_s": self.mb_per_s,
        }


class _NullStage:
    """Reusable no-op context manager returned when no timer is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_STAGE = _NullStage()


class _Stage:
    """One live stage entry; records into its timer and/or collector."""

    __slots__ = ("_timer", "_collector", "_name", "_nbytes", "_t0", "_span")

    def __init__(
        self,
        timer: "StageTimer | None",
        collector: "Collector | None",
        name: str,
        nbytes: int,
    ) -> None:
        self._timer = timer
        self._collector = collector
        self._name = name
        self._nbytes = nbytes

    def __enter__(self) -> "_Stage":
        if self._timer is not None:
            self._timer._stack.append(self._name)
        if self._collector is not None:
            self._span = (
                self._collector.start_span(self._name, bytes=self._nbytes)
                if self._nbytes
                else self._collector.start_span(self._name)
            )
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        dt = time.perf_counter() - self._t0
        if self._collector is not None:
            self._collector.end_span(self._span)
        timer = self._timer
        if timer is None:
            return
        path = "/".join(timer._stack)
        timer._stack.pop()
        rec = timer.records.get(path)
        if rec is None:
            rec = timer.records[path] = StageRecord()
        rec.calls += 1
        rec.seconds += dt
        rec.nbytes += self._nbytes


@dataclass
class StageTimer:
    """Collects per-stage wall time, bytes and call counts.

    Use as a context manager to activate it for the current context::

        with StageTimer() as t:
            compress(data, ...)
        print(t.as_dict())

    Nested activations restore the previous timer on exit, so timers can
    wrap each other (e.g. a bench harness around instrumented library
    calls that themselves activate nothing).
    """

    records: dict[str, StageRecord] = field(default_factory=dict)
    _stack: list[str] = field(default_factory=list)

    def __enter__(self) -> "StageTimer":
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, *exc: object) -> None:
        _ACTIVE.reset(self._token)

    def stage(self, name: str, nbytes: int = 0) -> _Stage:
        return _Stage(self, _OBS_ACTIVE.get(), name, nbytes)

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Flat ``{stage path: {calls, seconds, bytes, mb_per_s}}`` map."""
        return {path: rec.as_dict() for path, rec in sorted(self.records.items())}

    def merge(self, other: "StageTimer") -> None:
        """Accumulate another timer's records into this one."""
        self.merge_records(other.records)

    def merge_records(self, records: Mapping[str, StageRecord]) -> None:
        """Accumulate a ``records`` map — e.g. one a worker sent back.

        This is the cross-process form of :meth:`merge`: pool workers
        return ``timer.records`` (plain picklable dataclasses) with
        their results, and the parent folds them in here.
        """
        for path, rec in records.items():
            mine = self.records.get(path)
            if mine is None:
                mine = self.records[path] = StageRecord()
            mine.calls += rec.calls
            mine.seconds += rec.seconds
            mine.nbytes += rec.nbytes

    @staticmethod
    def median_stages(timers: list["StageTimer"]) -> dict[str, dict[str, float]]:
        """Per-stage medians across repeat runs.

        ``seconds`` is the median over the runs that saw the stage;
        ``calls``/``bytes`` take the median too (they are normally
        identical across repeats of a deterministic workload).
        """
        paths: set[str] = set()
        for t in timers:
            paths.update(t.records)
        out: dict[str, dict[str, float]] = {}
        for path in sorted(paths):
            recs = [t.records[path] for t in timers if path in t.records]
            seconds = _median([r.seconds for r in recs])
            nbytes = int(_median([r.nbytes for r in recs]))
            calls = int(_median([r.calls for r in recs]))
            mb = nbytes / seconds / 1e6 if seconds > 0 and nbytes > 0 else 0.0
            out[path] = {
                "calls": calls,
                "seconds": seconds,
                "bytes": nbytes,
                "mb_per_s": mb,
            }
        return out


def _median(xs: list[float]) -> float:
    ys = sorted(xs)
    n = len(ys)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ys[mid]
    return 0.5 * (ys[mid - 1] + ys[mid])


def active_timer() -> StageTimer | None:
    """The timer currently collecting stages, if any."""
    return _ACTIVE.get()


def stage(name: str, nbytes: int = 0) -> "_Stage | _NullStage":
    """Record a stage on the active timer and/or span collector.

    A no-op (shared null context manager, nothing allocated) when
    neither a :class:`StageTimer` nor a :class:`repro.obs.Collector`
    is active.  ``nbytes`` is the payload size the stage processes; it
    feeds the MB/s throughput column of the bench report and the
    ``bytes`` attribute of the recorded span.
    """
    timer = _ACTIVE.get()
    collector = _OBS_ACTIVE.get()
    if timer is None and collector is None:
        return _NULL_STAGE
    return _Stage(timer, collector, name, nbytes)
