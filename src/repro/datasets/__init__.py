"""Synthetic stand-ins for the paper's production data sets.

The paper evaluates on 2.6 TB of CESM ATM climate fields, 40 GB of APS
X-ray images and 1.2 GB of hurricane simulation volumes — none of which
are redistributable or obtainable offline.  These generators synthesize
fields with the same qualitative structure (smooth multi-scale regions
punctuated by sharp/spiky changes, sparse masks, huge dynamic ranges)
so that every compressor code path the paper exercises is exercised
here too.  See DESIGN.md §1.4 for the substitution rationale.
"""

from repro.datasets.climate import atm_dataset, cdnumc_like, freqsh_like, snowhlnd_like
from repro.datasets.fields import gaussian_random_field, ridged_field, sparse_patches
from repro.datasets.hurricane import hurricane_dataset
from repro.datasets.registry import DATASETS, describe_datasets, load
from repro.datasets.xray import aps_like

__all__ = [
    "DATASETS",
    "aps_like",
    "atm_dataset",
    "cdnumc_like",
    "describe_datasets",
    "freqsh_like",
    "gaussian_random_field",
    "hurricane_dataset",
    "load",
    "ridged_field",
    "snowhlnd_like",
    "sparse_patches",
]
