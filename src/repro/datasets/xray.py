"""APS-like X-ray detector images (Advanced Photon Source stand-ins).

The paper's APS data are 2560x2560 detector frames.  Diffraction images
combine a slowly varying background, powder rings, intense localized
Bragg peaks, and shot noise — smooth regions punctuated by extreme
spikes, the regime Section I motivates.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.fields import gaussian_random_field

__all__ = ["aps_like"]

DEFAULT_SHAPE = (512, 512)


def aps_like(
    shape: tuple[int, int] = DEFAULT_SHAPE,
    seed: int = 0,
    n_peaks: int = 120,
    n_rings: int = 5,
    noise: float = 0.01,
) -> np.ndarray:
    """Synthetic diffraction frame (float32, arbitrary detector counts)."""
    rng = np.random.default_rng(seed)
    h, w = shape
    y, x = np.mgrid[0:h, 0:w].astype(np.float64)
    cy, cx = h / 2.0, w / 2.0
    r = np.hypot(y - cy, x - cx)

    background = 50.0 * np.exp(-r / (0.6 * max(h, w)))
    background += 5.0 * (1 + gaussian_random_field(shape, beta=3.0, seed=seed))

    rings = np.zeros(shape)
    for i in range(n_rings):
        radius = (0.1 + 0.8 * (i + 1) / (n_rings + 1)) * min(h, w) / 2
        width = 1.5 + 1.0 * rng.random()
        rings += (30.0 / (i + 1)) * np.exp(-((r - radius) ** 2) / (2 * width**2))

    peaks = np.zeros(shape)
    py = rng.uniform(0, h, n_peaks)
    px = rng.uniform(0, w, n_peaks)
    amp = 10.0 ** rng.uniform(2, 4.2, n_peaks)
    sig = rng.uniform(0.8, 2.5, n_peaks)
    for yy, xx, a, s in zip(py, px, amp, sig):
        y0, y1 = max(0, int(yy - 5 * s)), min(h, int(yy + 5 * s) + 1)
        x0, x1 = max(0, int(xx - 5 * s)), min(w, int(xx + 5 * s) + 1)
        sub_y, sub_x = np.mgrid[y0:y1, x0:x1].astype(np.float64)
        peaks[y0:y1, x0:x1] += a * np.exp(
            -((sub_y - yy) ** 2 + (sub_x - xx) ** 2) / (2 * s**2)
        )

    image = background + rings + peaks
    image *= 1.0 + noise * rng.standard_normal(shape)
    return np.maximum(image, 0.0).astype(np.float32)
