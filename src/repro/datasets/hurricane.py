"""Hurricane-simulation-like 3-D fields (NCAR Vis2004 contest stand-ins).

The paper's hurricane data are 100x500x500 volumes of simulation
variables.  We synthesize a Rankine-style vortex — solid-body rotation
inside the radius of maximum wind, 1/r decay outside — with vertical
structure, a warm/low-pressure core, moisture, and superimposed
spectral turbulence.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.fields import gaussian_random_field

__all__ = ["hurricane_dataset"]

DEFAULT_SHAPE = (24, 96, 96)


def hurricane_dataset(
    shape: tuple[int, int, int] = DEFAULT_SHAPE,
    seed: int = 0,
    v_max: float = 65.0,
    turbulence: float = 0.06,
) -> dict[str, np.ndarray]:
    """Synthetic hurricane volume: U, V, W winds, pressure P, moisture QV.

    Returns float32 arrays of the given (z, y, x) shape.
    """
    nz, ny, nx = shape
    z = np.linspace(0, 1, nz)[:, None, None]
    y = np.linspace(-1, 1, ny)[None, :, None]
    x = np.linspace(-1, 1, nx)[None, None, :]
    # eye drifts slightly with height (vortex tilt)
    cx = 0.08 * z * np.cos(3 * z)
    cy = 0.08 * z * np.sin(3 * z)
    dx = x - cx
    dy = y - cy
    r = np.sqrt(dx**2 + dy**2) + 1e-9
    r_max = 0.12  # radius of maximum wind

    vt = np.where(r <= r_max, v_max * r / r_max, v_max * r_max / r)
    vt = vt * (1.0 - 0.6 * z)  # winds weaken aloft
    u = -vt * dy / r
    v = vt * dx / r

    w = (
        4.0
        * np.exp(-((r - r_max) ** 2) / (2 * (0.04) ** 2))
        * np.sin(np.pi * z)
    )

    p = 101325.0 - 8000.0 * np.exp(-(r**2) / (2 * (0.25) ** 2)) * (1 - 0.5 * z)
    qv = 0.02 * np.exp(-2.0 * z) * (1 + 0.3 * np.exp(-(r**2) / 0.08))

    # Turbulence mirrors resolved simulation output: a steep-spectrum
    # (grid-smooth) component everywhere plus rough eddies confined to
    # ~10% of the volume (rainbands), like the ATM generator's storms.
    mask_field = gaussian_random_field(shape, beta=3.5, seed=seed + 9)
    mask = (mask_field > np.quantile(mask_field, 0.9)).astype(np.float64)

    def turb(seed_off: int) -> np.ndarray:
        smooth = gaussian_random_field(shape, beta=6.0, seed=seed + seed_off)
        rough = gaussian_random_field(shape, beta=2.8, seed=seed + seed_off + 50)
        return 0.25 * smooth + turbulence * rough * mask

    fields = {
        "U": u + v_max * 0.04 * turb(1),
        "V": v + v_max * 0.04 * turb(2),
        "W": w + 2.0 * 0.04 * turb(3),
        "P": p + 100.0 * 0.04 * turb(4),
        "QVAPOR": np.maximum(qv * (1 + 0.08 * turb(5)), 0.0),
    }
    return {k: np.ascontiguousarray(f, dtype=np.float32) for k, f in fields.items()}
