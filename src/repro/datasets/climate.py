"""ATM-like climate fields (CESM Community Atmosphere Model stand-ins).

The paper's ATM data are 1800x3600 single-precision lat-lon fields; three
named variables matter for specific experiments:

* ``FREQSH`` — shallow-convection frequency, smooth-ish in [0, 1], the
  paper's representative *low*-compression-factor variable (CF ≈ 6.5 at
  eb_rel 1e-4; Fig. 9a).
* ``SNOWHLND`` — land snow depth, mostly zero with smooth patches, the
  representative *high*-CF variable (CF ≈ 48; Fig. 9c).
* ``CDNUMC`` — column droplet number, value range ~1e-3..1e11, the case
  where ZFP's exponent alignment breaks the error bound (Section V-A).

Default shape is laptop-sized; pass ``shape=(1800, 3600)`` for
paper-scale runs.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.fields import gaussian_random_field, ridged_field, sparse_patches

__all__ = ["freqsh_like", "snowhlnd_like", "cdnumc_like", "phis_like", "atm_dataset"]

DEFAULT_SHAPE = (384, 768)


def freqsh_like(shape: tuple[int, int] = DEFAULT_SHAPE, seed: int = 0) -> np.ndarray:
    """Shallow-convection-frequency-like field in [0, 1] (float32).

    Multi-scale smooth base with front-like transitions and a little
    small-scale roughness — compresses around the paper's FREQSH levels.
    """
    base = gaussian_random_field(shape, beta=5.5, seed=seed)
    fronts = ridged_field(shape, beta=5.0, sharpness=2.0, seed=seed + 10)
    # Roughness is *localized* (storm systems), not global: a smooth
    # majority keeps tight-bound prediction alive (the paper's ATM grid is
    # heavily oversampled) while rough patches bound the loose-bound CF.
    mask_field = gaussian_random_field(shape, beta=4.0, seed=seed + 30)
    mask = mask_field > np.quantile(mask_field, 0.9)
    rough = gaussian_random_field(shape, beta=2.8, seed=seed + 20)
    raw = 0.5 + 0.3 * base + 0.12 * fronts + 0.03 * rough * mask
    return np.clip(raw, 0.0, 1.0).astype(np.float32)


def snowhlnd_like(
    shape: tuple[int, int] = DEFAULT_SHAPE, seed: int = 1
) -> np.ndarray:
    """Land-snow-depth-like field: ~90% exact zeros, smooth patches
    elsewhere (float32, meters-ish scale) — the paper's high-CF regime."""
    field = sparse_patches(shape, coverage=0.10, beta=6.0, seed=seed)
    return (field * 0.8).astype(np.float32)


def cdnumc_like(
    shape: tuple[int, int] = DEFAULT_SHAPE, seed: int = 2
) -> np.ndarray:
    """Column-droplet-number-like field spanning ~14 decades (float32).

    Log-scaled smooth field exponentiated to cover ~1e-3..1e11, the huge
    dynamic range that defeats ZFP's fixed-point alignment.
    """
    log_field = gaussian_random_field(shape, beta=3.0, seed=seed)
    # map N(0,1) smoothly onto exponents [-3, 11]
    exponents = 4.0 + 3.5 * np.clip(log_field, -2, 2)
    return (10.0**exponents).astype(np.float32)


def phis_like(shape: tuple[int, int] = DEFAULT_SHAPE, seed: int = 5) -> np.ndarray:
    """Surface-geopotential-like field: very smooth at grid scale.

    The paper's 1800x3600 ATM grid heavily oversamples large-scale
    structure, so fields are locally polynomial — the regime where the
    2-layer model beats 1-layer *on original values* (Table II) while
    decompression-error feedback still favors 1 layer in the loop.
    """
    return (
        3000.0 * gaussian_random_field(shape, beta=6.0, seed=seed)
    ).astype(np.float32)


def atm_dataset(
    shape: tuple[int, int] = DEFAULT_SHAPE, seed: int = 0
) -> dict[str, np.ndarray]:
    """A bundle of ATM-like variables keyed by CESM-ish names."""
    return {
        "FREQSH": freqsh_like(shape, seed),
        "SNOWHLND": snowhlnd_like(shape, seed + 1),
        "CDNUMC": cdnumc_like(shape, seed + 2),
        "TS": (288.0 + 25.0 * gaussian_random_field(shape, 3.4, seed + 3)).astype(
            np.float32
        ),
        "PSL": (
            101325.0 + 1500.0 * gaussian_random_field(shape, 3.6, seed + 4)
        ).astype(np.float32),
        "PHIS": phis_like(shape, seed + 5),
    }
