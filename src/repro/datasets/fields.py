"""Random-field primitives shared by the data-set generators.

Spectral (FFT) synthesis of Gaussian random fields with power-law
spectra gives tunable smoothness; ridging and sparse patching add the
"fairly sharp or spiky data changes in small data regions" the paper
names as the hard case for curve-fitting compressors.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_random_field", "ridged_field", "sparse_patches"]


def _radial_wavenumber(shape: tuple[int, ...]) -> np.ndarray:
    axes = [np.fft.fftfreq(s) * s for s in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    k2 = sum(g * g for g in grids)
    k = np.sqrt(k2)
    k[(0,) * len(shape)] = 1.0  # avoid div-by-zero at DC
    return k


def gaussian_random_field(
    shape: tuple[int, ...],
    beta: float = 3.0,
    seed: int = 0,
) -> np.ndarray:
    """Zero-mean unit-variance field with isotropic spectrum ``k^-beta``.

    ``beta ~ 3`` resembles large-scale geophysical fields (smooth);
    ``beta ~ 1`` is rough.  Deterministic per ``(shape, beta, seed)``.
    """
    rng = np.random.default_rng(seed)
    k = _radial_wavenumber(shape)
    amplitude = k ** (-beta / 2.0)
    amplitude[(0,) * len(shape)] = 0.0
    noise = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    field = np.fft.ifftn(noise * amplitude).real
    field -= field.mean()
    std = field.std()
    if std > 0:
        field /= std
    return field


def ridged_field(
    shape: tuple[int, ...],
    beta: float = 3.0,
    sharpness: float = 8.0,
    seed: int = 0,
) -> np.ndarray:
    """Smooth field pushed through ``tanh`` to create front-like ridges.

    Mimics atmospheric fronts / shock-like features: large smooth regions
    separated by thin zones of steep gradient.
    """
    base = gaussian_random_field(shape, beta, seed)
    return np.tanh(sharpness * base)


def sparse_patches(
    shape: tuple[int, ...],
    coverage: float = 0.15,
    beta: float = 3.5,
    seed: int = 0,
) -> np.ndarray:
    """Mostly-zero field with smooth positive patches.

    Thresholds a smooth random field so ~``coverage`` of the domain is
    active; magnitudes inside patches come from a second field.  This is
    the SNOWHLND-like regime (paper Fig. 9): high compression factors
    because most points are exactly zero.
    """
    if not 0 < coverage < 1:
        raise ValueError("coverage must be in (0, 1)")
    mask_field = gaussian_random_field(shape, beta, seed)
    threshold = np.quantile(mask_field, 1.0 - coverage)
    magnitude = gaussian_random_field(shape, beta, seed + 1)
    return np.where(mask_field > threshold, np.abs(magnitude) + 0.1, 0.0)
