"""Data-set registry: Table III of the paper, repro edition.

Maps experiment-facing names to generators with per-scale shapes, and
renders the inventory table (the ``table3`` experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.climate import atm_dataset
from repro.datasets.hurricane import hurricane_dataset
from repro.datasets.xray import aps_like

__all__ = ["DATASETS", "DatasetSpec", "load", "describe_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    name: str
    source: str
    paper_dims: str
    paper_size: str
    shapes: dict  # scale -> shape
    loader: Callable[..., dict]


def _atm_loader(shape, seed=0):
    return atm_dataset(shape, seed)


def _aps_loader(shape, seed=0):
    return {"frame0": aps_like(shape, seed), "frame1": aps_like(shape, seed + 7)}


def _hurricane_loader(shape, seed=0):
    return hurricane_dataset(shape, seed)


DATASETS: dict[str, DatasetSpec] = {
    "ATM": DatasetSpec(
        name="ATM",
        source="Climate simulation (CESM) — synthetic stand-in",
        paper_dims="1800 x 3600",
        paper_size="2.6 TB, 11400 files",
        shapes={"tiny": (96, 192), "small": (384, 768), "paper": (1800, 3600)},
        loader=_atm_loader,
    ),
    "APS": DatasetSpec(
        name="APS",
        source="X-ray instrument (APS) — synthetic stand-in",
        paper_dims="2560 x 2560",
        paper_size="40 GB, 1518 files",
        shapes={"tiny": (128, 128), "small": (512, 512), "paper": (2560, 2560)},
        loader=_aps_loader,
    ),
    "Hurricane": DatasetSpec(
        name="Hurricane",
        source="Hurricane simulation (NCAR) — synthetic stand-in",
        paper_dims="100 x 500 x 500",
        paper_size="1.2 GB, 624 files",
        shapes={
            "tiny": (8, 40, 40),
            "small": (24, 96, 96),
            "paper": (100, 500, 500),
        },
        loader=_hurricane_loader,
    ),
}


def load(name: str, scale: str = "small", seed: int = 0) -> dict[str, np.ndarray]:
    """Load all variables of a named data set at the given scale."""
    spec = DATASETS[name]
    shape = spec.shapes[scale]
    return spec.loader(shape, seed=seed)


def describe_datasets(scale: str = "small") -> list[dict]:
    """Rows of the Table III reproduction."""
    rows = []
    for spec in DATASETS.values():
        variables = load(spec.name, scale="tiny")
        shape = spec.shapes[scale]
        rows.append(
            {
                "Data": spec.name,
                "Source": spec.source,
                "Paper dims": spec.paper_dims,
                "Paper size": spec.paper_size,
                "Repro shape": "x".join(str(s) for s in shape),
                "Variables": ", ".join(variables),
            }
        )
    return rows
