"""Span tracer and metrics registry (the observability core).

A :class:`Collector` gathers two kinds of telemetry from one run:

* **spans** — a tree of named, timestamped intervals.  The pipeline's
  existing :func:`repro.perf.stage` hook feeds it automatically (every
  ``stage("quantize")`` becomes a span), and subsystems add their own
  spans (``compress``, ``decompress``, ``tile``) with attributes.
* **metrics** — counters (monotonic sums, e.g. quantization outliers),
  observations (count/sum/min/max summaries, e.g. per-tile compression
  factor) and bin-count histograms (e.g. Huffman code lengths).

Like :class:`repro.perf.StageTimer`, a collector activates through a
context variable, so the disabled path costs one context-variable read
and nothing is ever recorded unless a caller opts in — compression
output is byte-identical with and without a collector (telemetry only
observes, it never feeds encoded bytes).

Cross-process runs serialize a worker's collector with
:meth:`Collector.to_payload` and graft it into the parent with
:meth:`Collector.merge_payload`; each worker process gets its own *lane*
(trace-viewer thread row) and worker spans keep their tile/item
attribution.  Time bases are aligned through a wall-clock anchor
captured at construction.

Clocks are injected (``clock``/``wall_clock`` constructor parameters),
which keeps encode/decode modules free of bare wall-clock reads (the
szlint SZ102 determinism rule checks this) and makes span timing
testable with fake clocks.

>>> with Collector() as col:
...     with span("outer", kind="demo"):
...         with span("inner"):
...             metric_add("things", 2)
>>> [s.name for s in col.spans], col.counters["things"]
(['outer', 'inner'], 2.0)
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from contextvars import ContextVar, Token
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Collector",
    "SpanRecord",
    "active_collector",
    "annotate",
    "metric_add",
    "metric_hist",
    "metric_observe",
    "span",
]

_ACTIVE: ContextVar["Collector | None"] = ContextVar(
    "repro_obs_active_collector", default=None
)

Attrs = dict[str, Any]


@dataclass
class SpanRecord:
    """One closed (or still-open) interval in the span tree.

    ``start``/``end`` are seconds relative to the owning collector's
    epoch (its construction instant); ``parent`` is the index of the
    enclosing span in ``Collector.spans`` (``-1`` for roots); ``lane``
    is the trace-viewer row — 0 for the collecting process, 1+ for
    merged worker processes.
    """

    name: str
    start: float
    end: float
    parent: int
    lane: int = 0
    attrs: Attrs = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


class _NullSpan:
    """Reusable no-op returned by :func:`span` when nothing collects."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _SpanCtx:
    """Context manager recording one span on a specific collector."""

    __slots__ = ("_collector", "_name", "_attrs", "_index")

    def __init__(self, collector: "Collector", name: str, attrs: Attrs) -> None:
        self._collector = collector
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanCtx":
        self._index = self._collector.start_span(self._name, **self._attrs)
        return self

    def __exit__(self, *exc: object) -> None:
        self._collector.end_span(self._index)


class Collector:
    """Collects spans and metrics for the current context.

    Use as a (re-entrant) context manager to activate::

        with Collector() as col:
            codec.encode(data)
        report = run_report(col)

    Re-entrancy matters for the :class:`repro.api.Codec` hook: one
    collector may wrap many encode/decode calls, accumulating a single
    run's telemetry across them.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        #: wall-clock instant of the epoch — aligns merged worker spans.
        self.anchor = wall_clock()
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.observations: dict[str, dict[str, float]] = {}
        self.histograms: dict[str, list[int]] = {}
        #: lane -> originating process id (lane 0 is this process).
        self.lane_pids: dict[int, int] = {0: os.getpid()}
        self._stack: list[int] = []
        self._tokens: list[Token[Collector | None]] = []
        self._pid_lanes: dict[int, int] = {}

    # -- activation --------------------------------------------------------

    def __enter__(self) -> "Collector":
        self._tokens.append(_ACTIVE.set(self))
        return self

    def __exit__(self, *exc: object) -> None:
        _ACTIVE.reset(self._tokens.pop())

    # -- spans -------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def span(self, name: str, **attrs: Any) -> _SpanCtx:
        """Context manager recording ``name`` as a child of the open span."""
        return _SpanCtx(self, name, attrs)

    def start_span(self, name: str, **attrs: Any) -> int:
        """Open a span; returns its index for :meth:`end_span`."""
        parent = self._stack[-1] if self._stack else -1
        index = len(self.spans)
        self.spans.append(SpanRecord(name, self._now(), 0.0, parent, 0, attrs))
        self._stack.append(index)
        return index

    def end_span(self, index: int) -> None:
        """Close the span opened as ``index`` (stamps its end time)."""
        self.spans[index].end = self._now()
        if self._stack and self._stack[-1] == index:
            self._stack.pop()
        elif index in self._stack:  # mispaired exit: drop descendants too
            del self._stack[self._stack.index(index):]

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op at root)."""
        if self._stack:
            self.spans[self._stack[-1]].attrs.update(attrs)

    # -- metrics -----------------------------------------------------------

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the count/sum/min/max summary ``name``."""
        obs = self.observations.get(name)
        if obs is None:
            self.observations[name] = {
                "count": 1.0, "sum": value, "min": value, "max": value,
            }
        else:
            obs["count"] += 1.0
            obs["sum"] += value
            obs["min"] = min(obs["min"], value)
            obs["max"] = max(obs["max"], value)

    def hist(self, name: str, bincounts: Sequence[int]) -> None:
        """Accumulate a bin-count histogram (element-wise, zero-padded)."""
        counts = [int(c) for c in bincounts]
        cur = self.histograms.get(name)
        if cur is None:
            self.histograms[name] = counts
        else:
            if len(counts) > len(cur):
                cur.extend([0] * (len(counts) - len(cur)))
            for i, c in enumerate(counts):
                cur[i] += c

    # -- cross-process transfer --------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe snapshot a worker sends back with its result."""
        return {
            "pid": self.lane_pids[0],
            "anchor": self.anchor,
            "spans": [
                [s.name, s.start, s.end, s.parent, s.attrs]
                for s in self.spans
            ],
            "counters": dict(self.counters),
            "observations": {
                k: dict(v) for k, v in self.observations.items()
            },
            "histograms": {k: list(v) for k, v in self.histograms.items()},
        }

    def merge_payload(
        self, payload: dict[str, Any], attrs: Attrs | None = None
    ) -> None:
        """Graft a worker's :meth:`to_payload` under the current span.

        The worker gets a stable lane (assigned by first appearance of
        its pid); its root spans are re-parented under this collector's
        innermost open span and annotated with ``attrs`` (e.g. the item
        index the parent dispatched); its span times are shifted onto
        this collector's timeline through the wall-clock anchors; its
        counters/observations/histograms fold into this collector's.
        """
        pid = int(payload["pid"])
        lane = self._pid_lanes.get(pid)
        if lane is None:
            lane = len(self._pid_lanes) + 1
            self._pid_lanes[pid] = lane
            self.lane_pids[lane] = pid
        offset = float(payload["anchor"]) - self.anchor
        base = len(self.spans)
        graft_parent = self._stack[-1] if self._stack else -1
        for name, start, end, parent, span_attrs in payload["spans"]:
            merged_attrs = dict(span_attrs)
            if parent < 0:
                if attrs:
                    merged_attrs.update(attrs)
                merged_attrs.setdefault("worker_pid", pid)
            self.spans.append(
                SpanRecord(
                    str(name),
                    float(start) + offset,
                    float(end) + offset,
                    base + int(parent) if parent >= 0 else graft_parent,
                    lane,
                    merged_attrs,
                )
            )
        for key, value in payload["counters"].items():
            self.add(str(key), float(value))
        for key, obs in payload["observations"].items():
            cur = self.observations.get(str(key))
            if cur is None:
                self.observations[str(key)] = {
                    k: float(v) for k, v in obs.items()
                }
            else:
                cur["count"] += float(obs["count"])
                cur["sum"] += float(obs["sum"])
                cur["min"] = min(cur["min"], float(obs["min"]))
                cur["max"] = max(cur["max"], float(obs["max"]))
        for key, counts in payload["histograms"].items():
            self.hist(str(key), counts)


def active_collector() -> Collector | None:
    """The collector currently gathering telemetry, if any."""
    return _ACTIVE.get()


def span(name: str, **attrs: Any) -> "_SpanCtx | _NullSpan":
    """Record a span on the active collector (no-op when none is active)."""
    collector = _ACTIVE.get()
    if collector is None:
        return _NULL_SPAN
    return collector.span(name, **attrs)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span, if collecting."""
    collector = _ACTIVE.get()
    if collector is not None:
        collector.annotate(**attrs)


def metric_add(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active collector (no-op otherwise)."""
    collector = _ACTIVE.get()
    if collector is not None:
        collector.add(name, value)


def metric_observe(name: str, value: float) -> None:
    """Record an observation on the active collector (no-op otherwise)."""
    collector = _ACTIVE.get()
    if collector is not None:
        collector.observe(name, value)


def metric_hist(name: str, bincounts: Sequence[int]) -> None:
    """Accumulate a histogram on the active collector (no-op otherwise)."""
    collector = _ACTIVE.get()
    if collector is not None:
        collector.hist(name, bincounts)
