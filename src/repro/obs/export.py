"""Trace exports: schema-versioned run report and Chrome trace events.

Two serializations of one :class:`~repro.obs.tracer.Collector`:

* :func:`run_report` — the compact, schema-versioned (``repro-obs/1``)
  JSON document the CLI ``--trace`` flag writes and CI validates with
  :func:`validate_run_report`.  It carries the full span tree (flat list
  with parent indices), lane attribution, and every metric.
* :func:`chrome_trace` — the Chrome trace-event form (complete ``"X"``
  events plus process/thread metadata), loadable in ``chrome://tracing``
  and Perfetto.  Lanes map to trace threads, so worker processes render
  as separate rows.

:func:`summarize_run_report` renders the human-readable summary the
``repro-sz trace`` command prints: per-name span aggregates (calls,
total and self time) and the metrics tables.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.tracer import Collector

__all__ = [
    "SCHEMA",
    "chrome_trace",
    "run_report",
    "summarize_run_report",
    "validate_run_report",
    "write_run_report",
]

SCHEMA = "repro-obs/1"

_REQUIRED_TOP = (
    "schema", "created_unix", "duration_seconds", "lanes", "spans",
    "counters", "observations", "histograms",
)
_REQUIRED_SPAN = ("name", "start", "end", "parent", "lane", "attrs")
_REQUIRED_OBS = ("count", "sum", "min", "max")


def run_report(collector: Collector) -> dict[str, Any]:
    """Schema-versioned JSON-safe report of everything collected."""
    spans = [
        {
            "name": s.name,
            "start": s.start,
            "end": s.end,
            "parent": s.parent,
            "lane": s.lane,
            "attrs": _json_attrs(s.attrs),
        }
        for s in collector.spans
    ]
    duration = max((s.end for s in collector.spans), default=0.0)
    return {
        "schema": SCHEMA,
        "created_unix": collector.anchor,
        "duration_seconds": duration,
        "lanes": {str(lane): pid for lane, pid in collector.lane_pids.items()},
        "spans": spans,
        "counters": dict(sorted(collector.counters.items())),
        "observations": {
            k: dict(v) for k, v in sorted(collector.observations.items())
        },
        "histograms": {
            k: list(v) for k, v in sorted(collector.histograms.items())
        },
    }


def _json_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    """Coerce span attributes to JSON-native scalars/lists."""
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, bool, int, float)) or value is None:
            out[key] = value
        elif isinstance(value, (tuple, list)):
            out[key] = [
                v if isinstance(v, (str, bool, float)) else int(v)
                for v in value
            ]
        else:
            out[key] = str(value)
    return out


def write_run_report(collector: Collector, path: Any) -> dict[str, Any]:
    """Write :func:`run_report` JSON to ``path``; returns the report."""
    report = run_report(collector)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def validate_run_report(report: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a valid ``repro-obs/1``."""
    if not isinstance(report, dict):
        raise ValueError("obs report must be a JSON object")
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"unsupported obs schema {report.get('schema')!r}; want {SCHEMA!r}"
        )
    for key in _REQUIRED_TOP:
        if key not in report:
            raise ValueError(f"obs report missing required key {key!r}")
    spans = report["spans"]
    if not isinstance(spans, list):
        raise ValueError("obs report 'spans' must be a list")
    n = len(spans)
    for i, span in enumerate(spans):
        for key in _REQUIRED_SPAN:
            if key not in span:
                raise ValueError(f"span {i} missing required key {key!r}")
        parent = span["parent"]
        if not isinstance(parent, int) or not -1 <= parent < n:
            raise ValueError(
                f"span {i} has invalid parent {parent!r} (n={n})"
            )
        if parent == i:
            raise ValueError(f"span {i} is its own parent")
        if float(span["end"]) < float(span["start"]):
            raise ValueError(f"span {i} ends before it starts")
    for key, value in report["counters"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"counter {key!r} is not numeric: {value!r}")
    for key, obs in report["observations"].items():
        for stat in _REQUIRED_OBS:
            if stat not in obs:
                raise ValueError(f"observation {key!r} missing {stat!r}")
    for key, counts in report["histograms"].items():
        if not isinstance(counts, list) or any(
            not isinstance(c, int) or isinstance(c, bool) for c in counts
        ):
            raise ValueError(f"histogram {key!r} must be a list of ints")


def chrome_trace(source: "Collector | dict[str, Any]") -> dict[str, Any]:
    """Chrome trace-event JSON (``chrome://tracing`` / Perfetto loadable).

    ``source`` is a collector or a :func:`run_report` dict.  Spans become
    complete (``"ph": "X"``) events with microsecond timestamps; lanes
    become threads named after their originating process.
    """
    report = source if isinstance(source, dict) else run_report(source)
    validate_run_report(report)
    events: list[dict[str, Any]] = [
        {
            "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for lane_str, pid in sorted(report["lanes"].items(), key=lambda kv: int(kv[0])):
        lane = int(lane_str)
        label = "main" if lane == 0 else f"worker-{pid}"
        events.append(
            {
                "ph": "M", "name": "thread_name", "pid": 0, "tid": lane,
                "args": {"name": label},
            }
        )
    for span in report["spans"]:
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": float(span["start"]) * 1e6,
                "dur": (float(span["end"]) - float(span["start"])) * 1e6,
                "pid": 0,
                "tid": span["lane"],
                "args": dict(span["attrs"]),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize_run_report(report: dict[str, Any]) -> str:
    """Human-readable summary: span aggregates + metrics tables."""
    validate_run_report(report)
    spans = report["spans"]
    child_time: dict[int, float] = {}
    for span in spans:
        parent = span["parent"]
        if parent >= 0:
            child_time[parent] = child_time.get(parent, 0.0) + (
                float(span["end"]) - float(span["start"])
            )
    agg: dict[str, dict[str, float]] = {}
    for i, span in enumerate(spans):
        total = float(span["end"]) - float(span["start"])
        self_t = max(0.0, total - child_time.get(i, 0.0))
        row = agg.setdefault(
            span["name"], {"calls": 0.0, "total": 0.0, "self": 0.0}
        )
        row["calls"] += 1.0
        row["total"] += total
        row["self"] += self_t
    lines = [
        f"trace: {len(spans)} spans, "
        f"{report['duration_seconds'] * 1e3:.2f} ms, "
        f"{len(report['lanes'])} lane(s)"
    ]
    if agg:
        lines.append(f"{'span':28s} {'calls':>6s} {'total ms':>10s} {'self ms':>10s}")
        for name, row in sorted(
            agg.items(), key=lambda kv: -kv[1]["self"]
        ):
            lines.append(
                f"{name:28s} {int(row['calls']):6d} "
                f"{row['total'] * 1e3:10.3f} {row['self'] * 1e3:10.3f}"
            )
    if report["counters"]:
        lines.append("counters:")
        for key, value in report["counters"].items():
            lines.append(f"  {key:34s} {value:g}")
    if report["observations"]:
        lines.append("observations:")
        for key, obs in report["observations"].items():
            mean = obs["sum"] / obs["count"] if obs["count"] else 0.0
            lines.append(
                f"  {key:34s} n={int(obs['count'])} mean={mean:.4g} "
                f"min={obs['min']:.4g} max={obs['max']:.4g}"
            )
    if report["histograms"]:
        lines.append("histograms:")
        for key, counts in report["histograms"].items():
            lines.append(f"  {key:34s} {counts}")
    return "\n".join(lines)
