"""Observability: span tracing, codec metrics, cross-process telemetry.

* :mod:`repro.obs.tracer` — the :class:`Collector` (contextvar-activated
  span tree + metrics registry) and the module-level no-op-when-disabled
  hooks (:func:`span`, :func:`metric_add`, :func:`metric_observe`,
  :func:`metric_hist`, :func:`annotate`) the pipeline calls.
* :mod:`repro.obs.export` — the schema-versioned run report
  (``repro-obs/1``), its validator, the Chrome trace-event export
  (``chrome://tracing`` / Perfetto loadable) and the text summary.

Activate a collector around any pipeline call to gather telemetry; the
output bytes are identical either way::

    from repro.obs import Collector, run_report
    with Collector() as col:
        blob = codec.encode(data)
    report = run_report(col)          # spans + counters + histograms

Cross-process paths (:func:`repro.parallel.pool_map`, tiled compression
with ``workers > 1``) ship each worker's spans and metrics back with its
result and merge them into the parent's collector with per-worker lane
attribution — one trace covers the whole run.

Decode-side entropy telemetry (``repro-sz trace`` surfaces all of it):
``huffman/rounds`` (vectorized lookup rounds per decode) and
``huffman/symbols_per_lookup`` (multi-symbol table efficiency) describe
the block-parallel decoder; ``huffman/table_cache_hits`` /
``huffman/table_cache_misses`` count the process-level decode-table
cache (keyed by the canonical lengths array — tiled reads share tables
across tiles); ``tiled/reads`` / ``tiled/bytes_read`` account container
byte traffic per run.

The tuning layer (:mod:`repro.tuning`) reports under its own prefixes:
``estimate/calls``, ``estimate/sampled_values``, ``estimate/
predicted_cf`` and ``estimate/seconds`` describe each sampled
estimation (with an ``estimate`` span around the whole pass), and
``tune/calls``, ``tune/trials``, ``tune/relative_miss`` summarize every
auto-tuner search (a ``tune`` span wraps the trial sequence).
"""

from repro.obs.export import (
    SCHEMA,
    chrome_trace,
    run_report,
    summarize_run_report,
    validate_run_report,
    write_run_report,
)
from repro.obs.tracer import (
    Collector,
    SpanRecord,
    active_collector,
    annotate,
    metric_add,
    metric_hist,
    metric_observe,
    span,
)

__all__ = [
    "SCHEMA",
    "Collector",
    "SpanRecord",
    "active_collector",
    "annotate",
    "chrome_trace",
    "metric_add",
    "metric_hist",
    "metric_observe",
    "run_report",
    "span",
    "summarize_run_report",
    "validate_run_report",
    "write_run_report",
]
