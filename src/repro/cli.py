"""Command-line interface: ``repro-sz``.

Subcommands
-----------
``list``
    Show registered experiments.
``run EXPERIMENT [--scale tiny|small|paper]``
    Run one experiment (or ``all``) and print its table.
``compress IN.npy OUT.sz [--mode abs|rel|pw_rel|psnr --bound X]
[--rel 1e-4 | --abs EB] [--layers N] [--bits M]
[--tile T0,T1,... --workers N]``
    Compress a NumPy array file.  ``--mode``/``--bound`` select an
    error-bound mode: ``abs`` (absolute), ``rel`` (value-range
    relative), ``pw_rel`` (pointwise relative, ``|e_i| <= bound |x_i|``)
    or ``psnr`` (target PSNR in dB); ``--rel``/``--abs`` remain the
    legacy spellings of the first two.  ``--tile`` writes a
    block-indexed tiled container, streamed slab-by-slab so the input
    may exceed RAM.
``decompress IN.sz OUT.npy [--region 0:10,5:20]``
    Decompress a container back to ``.npy``; ``--region`` extracts a
    hyperslab (reading only the intersecting tiles of a v2 container).
``info FILE.sz [--json]``
    Pretty-print container metadata for v1 and tiled v2 containers;
    ``--json`` emits a machine-readable report including the
    reconstructed :class:`repro.api.SZConfig` (``SZConfig.to_dict()``).
``estimate SOURCE [--mode M --bound X] [--fraction F --seed S]``
    Predict the compression ratio (with a confidence interval) and the
    expected quality for a configuration *without* compressing the
    whole input (see :mod:`repro.tuning`).  ``SOURCE`` is a ``.npy``
    file or a container; on a tiled container with no ``--mode`` the
    footer index answers exactly, without decompressing anything.
``tune SOURCE (--target-ratio R | --target-psnr DB) [--rtol T]``
    Search the error-bound knob for the configuration whose *predicted*
    outcome hits the target, via monotone bisection over sample-based
    estimates; prints every trial.  On a container the search starts
    from the recorded mode/bound.  ``--verify`` compresses once with
    the winning config and reports the actual ratio/PSNR.
``bench [--scale tiny|small|large] [--out BENCH_micro.json]``
    Run the perf micro-benchmark sweep (see :mod:`repro.perf.bench`)
    and write the schema-versioned stage-breakdown report.
    ``--cases sweep,estimate`` adds estimator-vs-full-compression
    speedup/accuracy cases to the report.
``trace FILE [--chrome OUT.json]``
    Summarize telemetry.  On a ``--trace`` run report (``repro-obs/1``
    JSON): print the span/metric summary, optionally converting to a
    Chrome trace-event file loadable in ``chrome://tracing`` /
    Perfetto.  On a tiled container: print the footer-index tile
    distribution (hit-rate/mode-share histograms) without
    decompressing anything.

``compress``/``decompress``/``bench`` accept ``--trace OUT.json`` to
record the run under a :class:`repro.obs.Collector` and write the
schema-versioned run report (the compressed bytes are identical with
and without tracing).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import __version__
from repro.api import SZConfig
from repro.core import compress_with_stats, decompress
from repro.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _json_safe(value):
    """Recursively coerce container-info values into JSON-native types."""
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def _config_from_info(info: dict) -> dict | None:
    """Best-effort ``SZConfig.to_dict()`` reconstructed from a header.

    Containers record the error-bound request and the prediction/
    quantization settings but not every encoder knob (e.g. the Huffman
    ``block_size`` lives in the stream, not the header), so the result
    carries defaults there; ``None`` when no valid config can be built.

    Constant containers record the *requested* mode and bound in the
    header (``mode``/``mode_param``) while their resolved ``eb_abs`` is
    0, so the reconstruction prefers the recorded request over the
    (useless) resolved bound — this is what lets ``repro-sz tune`` and
    :func:`repro.tuning.autotune` seed a search from any existing file.
    """
    try:
        mode = info.get("mode", "abs")
        if mode in ("pw_rel", "psnr"):
            spec = {"mode": mode, "bound": info["mode_param"]}
        elif info.get("rel_bound") is not None:
            spec = {"mode": "rel", "bound": info["rel_bound"]}
            if info.get("abs_bound") is not None:
                spec["abs_bound"] = info["abs_bound"]
        elif info.get("abs_bound") is not None:
            spec = {"mode": "abs", "bound": info["abs_bound"]}
        elif info.get("mode_param"):
            spec = {"mode": mode, "bound": info["mode_param"]}
        else:
            spec = {"mode": "abs", "bound": info["eb_abs"]}
        knobs = {}
        for key in ("layers", "interval_bits", "entropy_coder",
                    "lossless_post", "tile_shape"):
            if info.get(key) is not None:
                knobs[key] = info[key]
        return SZConfig.from_dict({**spec, **knobs}).to_dict()
    except (KeyError, ValueError):
        return None


def _cmd_list(_args) -> int:
    for name, exp in EXPERIMENTS.items():
        print(f"{name:8s} {exp.paper_artifact:12s} {exp.description}")
    return 0


def _cmd_run(args) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.perf_counter()
        table = run_experiment(name, scale=args.scale)
        elapsed = time.perf_counter() - t0
        print(table)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


def _parse_tile(spec: str, ndim: int) -> tuple[int, ...]:
    try:
        parts = [int(p) for p in spec.split(",") if p]
    except ValueError:
        raise SystemExit(
            f"bad --tile {spec!r}: use comma-separated integers"
        ) from None
    if len(parts) == 1:
        parts = parts * ndim
    if len(parts) != ndim:
        raise SystemExit(
            f"--tile has {len(parts)} axes but the array has {ndim}"
        )
    if any(p < 1 for p in parts):
        raise SystemExit("--tile extents must be positive")
    return tuple(parts)


def _parse_region(spec: str) -> tuple:
    """Parse ``"0:10,5:,3"`` into a tuple of slices/ints."""
    items: list = []
    for part in spec.split(","):
        part = part.strip()
        try:
            if ":" in part:
                bounds = part.split(":")
                if len(bounds) != 2:
                    raise ValueError
                start = int(bounds[0]) if bounds[0] else None
                stop = int(bounds[1]) if bounds[1] else None
                items.append(slice(start, stop))
            elif part:
                items.append(int(part))
            else:
                items.append(slice(None))
        except ValueError:
            raise SystemExit(
                f"bad region axis {part!r}: use start:stop or an integer"
            ) from None
    return tuple(items)


def _traced(args):
    """Run the command body under a collector when ``--trace`` was given.

    Returns a ``(run, finish)`` pair: call the body inside ``run`` (a
    context manager) and ``finish()`` afterwards to write the run
    report.  With no ``--trace`` both are no-ops.
    """
    from contextlib import nullcontext

    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return nullcontext(), lambda: None
    from repro.obs import Collector, write_run_report

    collector = Collector()

    def finish() -> None:
        write_run_report(collector, trace_path)
        print(f"trace: {len(collector.spans)} spans -> {trace_path}")

    return collector, finish


def _cmd_compress(args) -> int:
    if args.mode is not None and args.bound is None:
        raise SystemExit(f"--mode {args.mode} requires --bound")
    if args.bound is not None and args.mode is None:
        raise SystemExit("--bound requires --mode")
    if args.mode is not None and (
        args.abs_bound is not None or args.rel_bound is not None
    ):
        raise SystemExit("--mode/--bound and --abs/--rel are mutually exclusive")
    config = SZConfig.from_kwargs(
        mode=args.mode,
        bound=args.bound,
        abs_bound=args.abs_bound,
        rel_bound=args.rel_bound,
        layers=args.layers,
        interval_bits=args.bits,
        adaptive=args.adaptive,
        workers=args.workers,
    )
    run, finish = _traced(args)
    with run:
        rc = _compress_body(args, config)
    finish()
    return rc


def _compress_body(args, config) -> int:
    if args.tile is not None:
        from repro.chunked import compress_file_tiled

        shape = np.load(args.input, mmap_mode="r").shape
        summary = compress_file_tiled(
            args.input,
            args.output,
            tile_shape=_parse_tile(args.tile, len(shape)),
            config=config,
        )
        print(
            f"{args.input}: {summary['original_bytes']} -> "
            f"{summary['compressed_bytes']} bytes "
            f"(CF {summary['compression_factor']:.2f}, "
            f"{summary['n_tiles']} tiles of {summary['tile_shape']})"
        )
        return 0
    data = np.load(args.input)
    blob, stats = compress_with_stats(data, config=config)
    with open(args.output, "wb") as fh:
        fh.write(blob)
    print(
        f"{args.input}: {stats.original_bytes} -> {stats.compressed_bytes} bytes "
        f"(mode {stats.mode}, CF {stats.compression_factor:.2f}, "
        f"{stats.bit_rate:.2f} bits/value, hit rate {stats.hit_rate:.1%})"
    )
    return 0


def _cmd_decompress(args) -> int:
    run, finish = _traced(args)
    with run:
        rc = _decompress_body(args)
    finish()
    return rc


def _decompress_body(args) -> int:
    from repro.chunked import decompress_region, is_tiled

    with open(args.input, "rb") as fh:
        head = fh.read(4)
    if args.region is not None:
        region = _parse_region(args.region)
        if is_tiled(head):
            data = decompress_region(args.input, region)
        else:
            with open(args.input, "rb") as fh:
                data = decompress(fh.read())[region]
        np.save(args.output, data)
        print(
            f"{args.input}[{args.region}]: restored {data.shape} "
            f"{data.dtype} -> {args.output}"
        )
        return 0
    if is_tiled(head):
        from repro.chunked import decompress_tiled

        data = decompress_tiled(args.input)
    else:
        with open(args.input, "rb") as fh:
            data = decompress(fh.read())
    np.save(args.output, data)
    print(f"{args.input}: restored {data.shape} {data.dtype} -> {args.output}")
    return 0


def _cmd_info(args) -> int:
    from repro.chunked import container_info_any
    from repro.metrics import tile_ratio_stats

    info = container_info_any(args.input)
    if args.json:
        report = _json_safe(dict(info))
        report["file"] = args.input
        report["config"] = _config_from_info(info)
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    tile_bytes = info.pop("tile_bytes", None)
    tile_values = info.pop("tile_values", None)
    hit_rates = info.pop("tile_hit_rates", None)
    info.pop("tile_compression_factors", None)
    summary = info.pop("tile_summary", None)
    for key, value in info.items():
        print(f"{key:18s} {value}")
    if tile_bytes:
        stats = tile_ratio_stats(
            tile_bytes, tile_values, np.dtype(info["dtype"]).itemsize
        )
        print(
            f"{'tile CF':18s} mean {stats['cf_mean']:.2f}  "
            f"std {stats['cf_std']:.2f}  min {stats['cf_min']:.2f}  "
            f"max {stats['cf_max']:.2f}"
        )
        print(
            f"{'tile hit rate':18s} mean {np.mean(hit_rates):.1%}  "
            f"min {np.min(hit_rates):.1%}"
        )
    if summary and summary.get("n_tiles"):
        print(f"{'hit-rate hist':18s} {summary['hit_rate_hist']}")
        print(f"{'mode-share hist':18s} {summary['mode_share_hist']}")
    return 0


def _print_footer_summary(path: str) -> int:
    """Tile-distribution summary straight from a tiled container's footer."""
    from repro.chunked.format import footer_features
    from repro.chunked.streams import TiledReader

    with TiledReader(path) as reader:
        info = reader.info()
        feats = footer_features(reader.entries, itemsize=reader.dtype.itemsize)
    summary = info["tile_summary"]
    print(f"{path}: {info['format']}, {summary['n_tiles']} tiles")
    for key in ("n_values", "n_unpredictable", "payload_bytes"):
        print(f"{key:18s} {summary[key]}")
    for key in ("hit_rate", "mode_share", "nonzero_bins"):
        d = summary[key]
        print(
            f"{key:18s} min {d['min']:.4g}  mean {d['mean']:.4g}  "
            f"max {d['max']:.4g}"
        )
    cf = feats["compression_factor"]
    print(
        f"{'tile CF':18s} min {cf.min():.4g}  "
        f"mean {cf.sum(dtype=np.float64) / max(1, cf.size):.4g}  "
        f"max {cf.max():.4g}"
    )
    print(f"{'hit-rate hist':18s} {summary['hit_rate_hist']}")
    print(f"{'mode-share hist':18s} {summary['mode_share_hist']}")
    return 0


def _tuning_config(args) -> "SZConfig | None":
    """Build the optional explicit config for ``estimate``/``tune``.

    ``None`` when the user gave no ``--mode``/``--bound`` — the tuning
    layer then reads the config out of a container header, or the
    caller falls back to the default relative bound for raw arrays.
    """
    if (args.mode is None) != (args.bound is None):
        raise SystemExit("--mode and --bound go together")
    if args.mode is None:
        return None
    return SZConfig.from_kwargs(mode=args.mode, bound=args.bound)


def _cmd_estimate(args) -> int:
    from repro.tuning import estimate

    config = _tuning_config(args)
    if config is None:
        with open(args.input, "rb") as fh:
            if fh.read(4) != b"SZRT":
                # Raw arrays (and v1 containers) need a configuration to
                # estimate under; mirror `compress`'s default bound.
                config = SZConfig.from_kwargs(mode="rel", bound=1e-4)
    run, finish = _traced(args)
    with run:
        est = estimate(
            args.input, config, fraction=args.fraction, seed=args.seed
        )
    finish()
    if args.json:
        json.dump(_json_safe(est.to_dict()), sys.stdout, indent=2,
                  sort_keys=True)
        print()
        return 0
    ratio = f"{est.ratio:.3f} [{est.ratio_low:.3f}, {est.ratio_high:.3f}]"
    print(f"{args.input}: mode {est.mode}, bound {est.bound:g} "
          f"({est.method})")
    print(f"{'predicted ratio':18s} {ratio}")
    print(f"{'bit rate':18s} {est.bit_rate:.3f} bits/value")
    print(f"{'predicted bytes':18s} {est.predicted_bytes} "
          f"(of {est.original_bytes})")
    if est.psnr is not None:
        print(f"{'expected psnr':18s} {est.psnr:.2f} dB")
    if est.max_abs_error is not None:
        print(f"{'max abs error':18s} {est.max_abs_error:.3g}")
    if est.max_pw_rel_error is not None:
        print(f"{'max pw-rel error':18s} {est.max_pw_rel_error:.3g}")
    print(f"{'sampled':18s} {est.n_values_sampled}/{est.n_values_total} "
          f"values in {est.n_blocks} blocks "
          f"({est.sample_fraction:.2%}, seed {est.seed}) "
          f"in {est.seconds:.3f}s")
    return 0


def _cmd_tune(args) -> int:
    from repro.tuning import autotune

    run, finish = _traced(args)
    with run:
        result = autotune(
            args.input,
            target_ratio=args.target_ratio,
            target_psnr=args.target_psnr,
            config=_tuning_config(args),
            fraction=args.fraction,
            seed=args.seed,
            rtol=args.rtol,
            max_trials=args.max_trials,
            verify=args.verify,
        )
    finish()
    if args.json:
        json.dump(_json_safe(result.to_dict()), sys.stdout, indent=2,
                  sort_keys=True)
        print()
        return 0 if result.converged else 1
    for i, trial in enumerate(result.trials):
        eb = trial.config.error_bound
        print(f"trial {i:2d}  {eb.mode}={eb.param:<12.6g} "
              f"predicted {trial.target_kind.replace('_', ' ')} "
              f"{trial.predicted:.4g}")
    eb = result.config.error_bound
    status = "converged" if result.converged else "NOT converged"
    print(f"{status} in {len(result.trials)} trials ({result.seconds:.3f}s): "
          f"--mode {eb.mode} --bound {eb.param:g}")
    print(f"{'target':18s} {result.target_kind} = {result.target_value:g}")
    print(f"{'predicted':18s} {result.predicted:.4g} "
          f"(miss {result.relative_miss:+.2%}, rtol {result.rtol:.0%})")
    if result.actual_ratio is not None:
        print(f"{'actual ratio':18s} {result.actual_ratio:.4g}")
    if result.actual_psnr is not None:
        print(f"{'actual psnr':18s} {result.actual_psnr:.2f} dB")
    return 0 if result.converged else 1


def _cmd_trace(args) -> int:
    from repro.chunked import is_tiled
    from repro.obs import chrome_trace, summarize_run_report, validate_run_report

    with open(args.input, "rb") as fh:
        head = fh.read(4)
    if is_tiled(head):
        if args.chrome:
            raise SystemExit(
                "--chrome needs a run report (JSON written by --trace), "
                "not a container"
            )
        return _print_footer_summary(args.input)
    try:
        with open(args.input) as fh:
            report = json.load(fh)
        validate_run_report(report)
    except (ValueError, UnicodeDecodeError) as exc:
        raise SystemExit(f"{args.input}: not a run report: {exc}") from None
    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(chrome_trace(report), fh, indent=2)
            fh.write("\n")
        print(f"chrome trace: {args.chrome}")
    print(summarize_run_report(report))
    return 0


def _cmd_bench(args) -> int:
    from repro.perf.bench import main as bench_main

    argv = ["--scale", args.scale, "--repeats", str(args.repeats),
            "--out", args.out]
    if args.only:
        argv += ["--only", args.only]
    if args.modes:
        argv += ["--modes", args.modes]
    if args.cases:
        argv += ["--cases", args.cases]
    if args.trace:
        argv += ["--trace", args.trace]
    return bench_main(argv)


def _cmd_ablation(args) -> int:
    from repro.experiments.ablation import ABLATIONS

    names = list(ABLATIONS) if args.study == "all" else [args.study]
    for name in names:
        print(ABLATIONS[name](scale=args.scale))
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sz",
        description="SZ-1.4 reproduction: error-bounded lossy compression",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro-sz {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run an experiment")
    p_run.add_argument("experiment", choices=list(EXPERIMENTS) + ["all"])
    p_run.add_argument("--scale", default="small",
                       choices=["tiny", "small", "paper"])
    p_run.set_defaults(func=_cmd_run)

    p_c = sub.add_parser("compress", help="compress a .npy array")
    p_c.add_argument("input")
    p_c.add_argument("output")
    p_c.add_argument("--rel", dest="rel_bound", type=float, default=None)
    p_c.add_argument("--abs", dest="abs_bound", type=float, default=None)
    p_c.add_argument(
        "--mode", default=None, choices=["abs", "rel", "pw_rel", "psnr"],
        help="error-bound mode; pw_rel bounds |e_i| <= bound*|x_i|, "
             "psnr targets a PSNR in dB (requires --bound)",
    )
    p_c.add_argument(
        "--bound", type=float, default=None,
        help="mode parameter for --mode",
    )
    p_c.add_argument("--layers", type=int, default=1)
    p_c.add_argument("--bits", type=int, default=8)
    p_c.add_argument("--adaptive", action="store_true")
    p_c.add_argument(
        "--tile", default=None, metavar="T0[,T1,...]",
        help="write a tiled (v2) container with these tile extents "
             "(one int = cubic tiles)",
    )
    p_c.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width for tiled compression",
    )
    p_c.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="record spans/metrics and write a repro-obs/1 run report",
    )
    p_c.set_defaults(func=_cmd_compress)

    p_d = sub.add_parser("decompress", help="decompress a container")
    p_d.add_argument("input")
    p_d.add_argument("output")
    p_d.add_argument(
        "--region", default=None, metavar="S0,S1,...",
        help="extract a hyperslab, e.g. '0:10,5:20,3'; on tiled "
             "containers only the intersecting tiles are read",
    )
    p_d.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="record spans/metrics and write a repro-obs/1 run report",
    )
    p_d.set_defaults(func=_cmd_decompress)

    p_e = sub.add_parser(
        "estimate",
        help="predict ratio/quality from a sample, without compressing",
    )
    p_e.add_argument("input", help=".npy file or container")
    p_e.add_argument(
        "--mode", default=None, choices=["abs", "rel", "pw_rel", "psnr"],
        help="error-bound mode to estimate under (requires --bound); "
             "defaults to a tiled container's own config, else rel 1e-4",
    )
    p_e.add_argument("--bound", type=float, default=None,
                     help="mode parameter for --mode")
    p_e.add_argument(
        "--fraction", type=float, default=None,
        help="sampled fraction of the input (default: config's "
             "sample_fraction, 0.02)",
    )
    p_e.add_argument("--seed", type=int, default=None,
                     help="sampling seed (default: config's sample_seed)")
    p_e.add_argument("--json", action="store_true",
                     help="emit the full Estimate record as JSON")
    p_e.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="record spans/metrics and write a repro-obs/1 run report",
    )
    p_e.set_defaults(func=_cmd_estimate)

    p_u = sub.add_parser(
        "tune",
        help="search the error bound for a target ratio or PSNR",
    )
    p_u.add_argument("input", help=".npy file or container")
    group = p_u.add_mutually_exclusive_group(required=True)
    group.add_argument("--target-ratio", type=float, default=None,
                       help="compression factor to hit")
    group.add_argument("--target-psnr", type=float, default=None,
                       help="quality (dB) to hit")
    p_u.add_argument(
        "--mode", default=None, choices=["abs", "rel", "pw_rel", "psnr"],
        help="mode whose bound is swept (requires --bound); defaults to "
             "a tiled container's own config, else rel 1e-4",
    )
    p_u.add_argument("--bound", type=float, default=None,
                     help="starting bound for --mode")
    p_u.add_argument("--fraction", type=float, default=None,
                     help="sampled fraction per trial")
    p_u.add_argument("--seed", type=int, default=None, help="sampling seed")
    p_u.add_argument("--rtol", type=float, default=0.05,
                     help="relative convergence tolerance (default 0.05)")
    p_u.add_argument("--max-trials", type=int, default=24,
                     help="probe budget (default 24)")
    p_u.add_argument(
        "--verify", action="store_true",
        help="compress once with the winning config and report the "
             "actual ratio/PSNR",
    )
    p_u.add_argument("--json", action="store_true",
                     help="emit the full TuneResult (all trials) as JSON")
    p_u.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="record spans/metrics and write a repro-obs/1 run report",
    )
    p_u.set_defaults(func=_cmd_tune)

    p_i = sub.add_parser("info", help="inspect a container (v1 or tiled v2)")
    p_i.add_argument("input")
    p_i.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report (includes the "
             "reconstructed SZConfig)",
    )
    p_i.set_defaults(func=_cmd_info)

    p_b = sub.add_parser(
        "bench", help="run the perf micro-benchmark sweep"
    )
    p_b.add_argument("--scale", default="small",
                     choices=["tiny", "small", "large"])
    p_b.add_argument("--repeats", type=int, default=3)
    p_b.add_argument("--only", default=None,
                     help="comma-separated case names (e.g. 3d-f32-rel)")
    p_b.add_argument("--modes", default=None,
                     help="comma-separated modes (abs,rel,pw_rel,psnr)")
    p_b.add_argument(
        "--cases", default=None,
        help="comma-separated case kinds: sweep, estimate "
             "(default sweep; estimate adds sampled-estimator "
             "speedup/accuracy cases)",
    )
    p_b.add_argument("--out", default="BENCH_micro.json")
    p_b.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="record the sweep's spans/metrics as a repro-obs/1 run report",
    )
    p_b.set_defaults(func=_cmd_bench)

    p_t = sub.add_parser(
        "trace",
        help="summarize a --trace run report or a tiled container's footer",
    )
    p_t.add_argument("input", help="run-report JSON or tiled container")
    p_t.add_argument(
        "--chrome", default=None, metavar="OUT.json",
        help="also convert the run report to a Chrome trace-event file "
             "(chrome://tracing / Perfetto)",
    )
    p_t.set_defaults(func=_cmd_trace)

    p_a = sub.add_parser("ablation", help="run a design-choice ablation")
    from repro.experiments.ablation import ABLATIONS

    p_a.add_argument("study", choices=list(ABLATIONS) + ["all"])
    p_a.add_argument("--scale", default="small",
                     choices=["tiny", "small", "paper"])
    p_a.set_defaults(func=_cmd_ablation)

    args = parser.parse_args(argv)
    if (
        args.command == "compress"
        and args.rel_bound is None
        and args.abs_bound is None
        and args.mode is None
        and args.bound is None
    ):
        args.rel_bound = 1e-4
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
