"""Command-line interface: ``repro-sz``.

Subcommands
-----------
``list``
    Show registered experiments.
``run EXPERIMENT [--scale tiny|small|paper]``
    Run one experiment (or ``all``) and print its table.
``compress IN.npy OUT.sz [--rel 1e-4 | --abs EB] [--layers N] [--bits M]``
    Compress a NumPy array file.
``decompress IN.sz OUT.npy``
    Decompress a container back to ``.npy``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core import compress_with_stats, decompress
from repro.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _cmd_list(_args) -> int:
    for name, exp in EXPERIMENTS.items():
        print(f"{name:8s} {exp.paper_artifact:12s} {exp.description}")
    return 0


def _cmd_run(args) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.perf_counter()
        table = run_experiment(name, scale=args.scale)
        elapsed = time.perf_counter() - t0
        print(table)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


def _cmd_compress(args) -> int:
    data = np.load(args.input)
    blob, stats = compress_with_stats(
        data,
        abs_bound=args.abs_bound,
        rel_bound=args.rel_bound,
        layers=args.layers,
        interval_bits=args.bits,
        adaptive=args.adaptive,
    )
    with open(args.output, "wb") as fh:
        fh.write(blob)
    print(
        f"{args.input}: {stats.original_bytes} -> {stats.compressed_bytes} bytes "
        f"(CF {stats.compression_factor:.2f}, {stats.bit_rate:.2f} bits/value, "
        f"hit rate {stats.hit_rate:.1%})"
    )
    return 0


def _cmd_decompress(args) -> int:
    with open(args.input, "rb") as fh:
        blob = fh.read()
    data = decompress(blob)
    np.save(args.output, data)
    print(f"{args.input}: restored {data.shape} {data.dtype} -> {args.output}")
    return 0


def _cmd_info(args) -> int:
    from repro.core import container_info

    with open(args.input, "rb") as fh:
        blob = fh.read()
    for key, value in container_info(blob).items():
        print(f"{key:18s} {value}")
    return 0


def _cmd_ablation(args) -> int:
    from repro.experiments.ablation import ABLATIONS

    names = list(ABLATIONS) if args.study == "all" else [args.study]
    for name in names:
        print(ABLATIONS[name](scale=args.scale))
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sz",
        description="SZ-1.4 reproduction: error-bounded lossy compression",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run an experiment")
    p_run.add_argument("experiment", choices=list(EXPERIMENTS) + ["all"])
    p_run.add_argument("--scale", default="small",
                       choices=["tiny", "small", "paper"])
    p_run.set_defaults(func=_cmd_run)

    p_c = sub.add_parser("compress", help="compress a .npy array")
    p_c.add_argument("input")
    p_c.add_argument("output")
    p_c.add_argument("--rel", dest="rel_bound", type=float, default=None)
    p_c.add_argument("--abs", dest="abs_bound", type=float, default=None)
    p_c.add_argument("--layers", type=int, default=1)
    p_c.add_argument("--bits", type=int, default=8)
    p_c.add_argument("--adaptive", action="store_true")
    p_c.set_defaults(func=_cmd_compress)

    p_d = sub.add_parser("decompress", help="decompress a container")
    p_d.add_argument("input")
    p_d.add_argument("output")
    p_d.set_defaults(func=_cmd_decompress)

    p_i = sub.add_parser("info", help="inspect a container header")
    p_i.add_argument("input")
    p_i.set_defaults(func=_cmd_info)

    p_a = sub.add_parser("ablation", help="run a design-choice ablation")
    from repro.experiments.ablation import ABLATIONS

    p_a.add_argument("study", choices=list(ABLATIONS) + ["all"])
    p_a.add_argument("--scale", default="small",
                     choices=["tiny", "small", "paper"])
    p_a.set_defaults(func=_cmd_ablation)

    args = parser.parse_args(argv)
    if args.command == "compress" and args.rel_bound is None and args.abs_bound is None:
        args.rel_bound = 1e-4
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
