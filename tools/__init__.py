"""Developer tooling for the SZ-1.4 reproduction (not shipped with the package)."""
