"""CLI: ``python -m tools.szlint src [--json] [--select SZ101,SZ102]``.

Exit status 0 when the tree is clean, 1 when any diagnostic (or parse
error) was reported, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.szlint.engine import lint_paths

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.szlint",
        description="repo-specific AST lint rules (SZ101..SZ105)",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories to lint (e.g. src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--force-scope",
        action="store_true",
        help="run every rule on every file, ignoring path scopes "
        "(for linting fixture snippets)",
    )
    args = parser.parse_args(argv)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"szlint: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2
    select = (
        {r.strip() for r in args.select.split(",") if r.strip()}
        if args.select
        else None
    )
    result = lint_paths(paths, select=select, force_scope=args.force_scope)
    if args.json:
        json.dump(result.as_dict(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for diag in result.diagnostics:
            print(diag.format())
        for err in result.errors:
            print(f"szlint: error: {err}", file=sys.stderr)
        status = "clean" if result.ok else f"{len(result.diagnostics)} finding(s)"
        print(f"szlint: {result.files_checked} file(s) checked, {status}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
