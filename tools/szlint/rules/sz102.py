"""SZ102 — determinism guard for encode/decode modules.

The codec promises byte-identical output for identical input across
machines and runs.  Inside the pipeline modules that produce or consume
stream bytes, this rule flags the constructs that silently break that
promise:

* wall-clock reads (``time.time``, ``datetime.now``, ...) — monotonic
  timers (``perf_counter``/``monotonic``) are allowed: they feed
  diagnostics, never output bytes;
* ``random`` module usage, and unseeded ``np.random`` generators;
* ``id(...)`` / ``hash(...)`` values (interpreter-run dependent; using
  ``hash`` inside ``__hash__``/``__eq__`` is exempt);
* iteration over set literals / ``set(...)`` (order is hash-dependent;
  wrap in ``sorted(...)``);
* dtype-unspecified NumPy reductions (``sum``/``cumsum``/``prod``
  without ``dtype=`` or ``out=``) — the default accumulator is the
  platform ``intp``, so a 32-bit host rounds differently and entropy
  cost models may pick different parameters.  The ufunc-method
  spellings of the same reductions (``np.add.reduce``/``reduceat``/
  ``accumulate``, and ``np.multiply.*``) carry the same accumulator
  hazard and are flagged identically; dtype-preserving ufuncs
  (``bitwise_or``, ``maximum``, ...) are exempt — they never widen.
"""

from __future__ import annotations

import ast

from tools.szlint.asthelpers import callee_name, dotted_name, int_literal
from tools.szlint.diagnostics import Diagnostic
from tools.szlint.rules import Rule

__all__ = ["SZ102"]

#: path fragments marking encode/decode pipeline modules.  repro/obs/ is
#: included because its hooks run inside those modules: a wall-clock read
#: there would execute on the encode path (Collector injects its clocks
#: as constructor parameters instead).
#: repro/parallel/ joined the scope when the wavefront pool split landed:
#: its workers execute the same quantization arithmetic as the serial
#: kernels, so the determinism contract extends to them unchanged.
#: repro/tuning/ is in scope because estimates promise determinism too
#: (same source + fraction + seed => identical prediction): its sampler
#: must draw from seeded generators and its models must pin reduction
#: dtypes exactly like the encode path.
SCOPE = (
    "repro/core/",
    "repro/encoding/",
    "repro/chunked/",
    "repro/obs/",
    "repro/parallel/",
    "repro/tuning/",
)

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}
_REDUCTIONS = {"sum", "cumsum", "prod"}
#: ufunc methods that reduce with a (possibly widening) accumulator.
_UFUNC_REDUCTION_METHODS = {"reduce", "reduceat", "accumulate"}
#: ufuncs whose reductions widen integer inputs to the platform ``intp``
#: by default.  Dtype-preserving ufuncs (bitwise_or, maximum, minimum,
#: logical_*) keep the input dtype and are deterministic as-is.
_ACCUMULATING_UFUNCS = {"add", "multiply"}
_HASH_EXEMPT_DEFS = {"__hash__", "__eq__"}


class SZ102(Rule):
    rule_id = "SZ102"

    def applies(self, module: str) -> bool:
        return any(fragment in module for fragment in SCOPE)

    def check(
        self, path: str, module: str, tree: ast.Module, source: str
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []

        def diag(node: ast.AST, message: str) -> None:
            out.append(
                Diagnostic(path, node.lineno, self.rule_id, message)
            )

        sorted_wrapped: set[int] = set()
        hash_exempt_ranges: list[tuple[int, int]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and (
                node.name in _HASH_EXEMPT_DEFS
            ):
                hash_exempt_ranges.append(
                    (node.lineno, node.end_lineno or node.lineno)
                )
            if isinstance(node, ast.Call) and callee_name(node) == "sorted":
                for arg in node.args:
                    sorted_wrapped.add(id(arg))

        def in_hash_exempt(node: ast.AST) -> bool:
            return any(
                lo <= node.lineno <= hi for lo, hi in hash_exempt_ranges
            )

        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                modname = (
                    node.module
                    if isinstance(node, ast.ImportFrom)
                    else None
                )
                names = [a.name for a in node.names]
                if modname == "random" or "random" in names:
                    diag(node, "import of `random` in an encode/decode module")
                continue
            if isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                if id(it) in sorted_wrapped:
                    continue
                if isinstance(it, ast.Set) or (
                    isinstance(it, ast.Call) and callee_name(it) == "set"
                ):
                    diag(
                        it,
                        "iteration over a set (hash-order dependent); "
                        "wrap in sorted(...)",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            name = callee_name(node)
            dotted = dotted_name(node.func) or ""
            if dotted in _WALL_CLOCK:
                diag(
                    node,
                    f"wall-clock read `{dotted}` (use perf_counter/"
                    "monotonic for diagnostics)",
                )
            elif dotted.startswith("random."):
                diag(node, f"`{dotted}` call in an encode/decode module")
            elif "random" in dotted.split(".") and name == "default_rng":
                if not node.args or int_literal(node.args[0]) is None:
                    diag(
                        node,
                        "unseeded np.random generator in an encode/decode "
                        "module (pass a literal seed)",
                    )
            elif name in {"id", "hash"} and isinstance(node.func, ast.Name):
                if name == "hash" and in_hash_exempt(node):
                    continue
                diag(
                    node,
                    f"`{name}()` value is interpreter-run dependent",
                )
            elif name in _REDUCTIONS and isinstance(node.func, ast.Attribute):
                # Attribute form only: `np.sum(x)` / `x.sum()`.  The
                # builtin `sum(...)` over Python ints is deterministic.
                kwargs = {kw.arg for kw in node.keywords}
                if "dtype" not in kwargs and "out" not in kwargs:
                    diag(
                        node,
                        f"dtype-unspecified `{name}` reduction (platform-"
                        "dependent accumulator); pass dtype= or out=",
                    )
            elif name in _UFUNC_REDUCTION_METHODS:
                # `np.add.reduce(x)` / `np.multiply.accumulate(x)`: same
                # intp-accumulator hazard as `sum`/`prod`, different
                # spelling.  The ufunc is the second-to-last component.
                parts = dotted.split(".")
                if (
                    len(parts) >= 2
                    and parts[-2] in _ACCUMULATING_UFUNCS
                ):
                    kwargs = {kw.arg for kw in node.keywords}
                    if "dtype" not in kwargs and "out" not in kwargs:
                        diag(
                            node,
                            f"dtype-unspecified `{parts[-2]}.{name}` ufunc "
                            "reduction (platform-dependent accumulator); "
                            "pass dtype= or out=",
                        )
        return out
