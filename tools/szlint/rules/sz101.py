"""SZ101 — writer/reader byte-width pairing in container modules.

Every byte-width literal on the pack side of a container module
(``value.to_bytes(N, "big")``, ``struct.pack("fmt", ...)``) must have a
byte-compatible partner on the unpack side of the same module group
(``int.from_bytes(buf[a:b], ...)`` with a statically derivable slice
width, ``struct.unpack``/``calcsize``) — and vice versa: an unpack width
with no pack partner is a *dead read*, usually a stale format string
left behind by a writer change.  This is the static form of the
container-format drift the golden-blob fixtures catch at runtime.

Modules are grouped per file (all current containers keep writer and
reader together); ``PAIRED_MODULES`` merges split writer/reader files
into one group.
"""

from __future__ import annotations

import ast
import struct
from dataclasses import dataclass, field

from tools.szlint.asthelpers import (
    callee_name,
    int_literal,
    slice_width,
    str_literal,
)
from tools.szlint.diagnostics import Diagnostic
from tools.szlint.rules import Rule

__all__ = ["SZ101"]

#: writer-module suffix -> reader-module suffix merged into one group.
#: All current container modules are self-paired, so this is empty; a
#: future split (e.g. chunked/writer.py vs chunked/reader.py) adds an
#: entry here instead of weakening the rule.
PAIRED_MODULES: dict[str, str] = {}

_PACK_CALLS = {"pack", "pack_into"}
_UNPACK_CALLS = {"unpack", "unpack_from", "calcsize"}


@dataclass
class _Group:
    """Widths seen on each side of one module group, with first location."""

    pack: dict[int, tuple[str, int]] = field(default_factory=dict)
    unpack: dict[int, tuple[str, int]] = field(default_factory=dict)


def _struct_size(fmt: str) -> int | None:
    try:
        return struct.calcsize(fmt)
    except struct.error:
        return None


class SZ101(Rule):
    rule_id = "SZ101"

    def __init__(self) -> None:
        self._groups: dict[str, _Group] = {}

    def applies(self, module: str) -> bool:
        # Any module can define a container; the rule only fires when a
        # file (group) actually has width literals on at least one side.
        return True

    def _group_key(self, module: str) -> str:
        for writer, reader in PAIRED_MODULES.items():
            if module.endswith(writer) or module.endswith(reader):
                return writer
        return module

    def check(
        self, path: str, module: str, tree: ast.Module, source: str
    ) -> list[Diagnostic]:
        group = self._groups.setdefault(self._group_key(module), _Group())
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = callee_name(node)
            if name == "to_bytes" and node.args:
                width = int_literal(node.args[0])
                if width is not None:
                    group.pack.setdefault(width, (path, node.lineno))
            elif name == "from_bytes" and node.args:
                width = slice_width(node.args[0])
                if width is not None:
                    group.unpack.setdefault(width, (path, node.lineno))
            elif name in _PACK_CALLS and node.args:
                fmt = str_literal(node.args[0])
                if fmt is not None:
                    size = _struct_size(fmt)
                    if size is not None:
                        group.pack.setdefault(size, (path, node.lineno))
            elif name in _UNPACK_CALLS and node.args:
                fmt = str_literal(node.args[0])
                if fmt is not None:
                    size = _struct_size(fmt)
                    if size is not None:
                        group.unpack.setdefault(size, (path, node.lineno))
        return []

    def finalize(self) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for group in self._groups.values():
            if not group.pack or not group.unpack:
                # A pure writer (or pure reader) group has its partner
                # outside the checked tree; pairing is not decidable.
                continue
            for width, (path, line) in sorted(group.pack.items()):
                if width not in group.unpack:
                    out.append(
                        Diagnostic(
                            path,
                            line,
                            self.rule_id,
                            f"pack width {width} has no unpack partner in "
                            "its module group (writer/reader format drift)",
                        )
                    )
            for width, (path, line) in sorted(group.unpack.items()):
                if width not in group.pack:
                    out.append(
                        Diagnostic(
                            path,
                            line,
                            self.rule_id,
                            f"unpack width {width} has no pack partner in "
                            "its module group (dead read / stale format)",
                        )
                    )
        return out
