"""SZ106 — entropy-coder dispatch goes through the registry.

PR 9 formalized the entropy stage behind the ``EntropyCoder`` registry
(:mod:`repro.encoding.coders`): ``get_entropy_coder(name)`` /
``coder_for_flags(flags)`` replace the ``entropy_coder == "arithmetic"``
string branches that used to live in ``core/compressor.py``.  This rule
flags any comparison of an ``entropy_coder`` variable (or attribute)
against a string literal outside ``repro/encoding/`` — the exact
re-growth of string dispatch the registry was built to stop.  Comparing
against a named constant (``DEFAULT_ENTROPY_CODER``) stays legal: that
is a defaults check, not dispatch.
"""

from __future__ import annotations

import ast

from tools.szlint.diagnostics import Diagnostic
from tools.szlint.rules import Rule

__all__ = ["SZ106"]

#: the registry package, where string names may legitimately be handled.
EXEMPT = "repro/encoding/"

_TARGET = "entropy_coder"


def _is_target(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == _TARGET
    if isinstance(node, ast.Attribute):
        return node.attr == _TARGET
    return False


def _is_str_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return True
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return bool(node.elts) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in node.elts
        )
    return False


class SZ106(Rule):
    rule_id = "SZ106"

    def applies(self, module: str) -> bool:
        return "repro/" in module and EXEMPT not in module

    def check(
        self, path: str, module: str, tree: ast.Module, source: str
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            if not any(_is_target(s) for s in sides):
                continue
            if not any(_is_str_literal(s) for s in sides):
                continue
            out.append(
                Diagnostic(
                    path,
                    node.lineno,
                    self.rule_id,
                    "string dispatch on `entropy_coder` outside "
                    "repro/encoding/; route through "
                    "`repro.encoding.get_entropy_coder` (or compare "
                    "against `DEFAULT_ENTROPY_CODER`)",
                )
            )
        return out
