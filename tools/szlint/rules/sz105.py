"""SZ105 — config discipline for public entry points.

ROADMAP rule since PR 5: new subsystems take an
:class:`repro.api.SZConfig` (or extend it) rather than grow keyword
lists.  This rule flags public functions and methods in the API-surface
modules whose signatures have grown past ``MAX_PLAIN_PARAMS`` named
parameters without accepting a config object — the exact drift the
SZConfig migration was meant to stop.

A parameter named ``config`` (or annotated ``SZConfig``) exempts the
signature; so do private (``_``-prefixed) functions and dunder methods.
"""

from __future__ import annotations

import ast

from tools.szlint.diagnostics import Diagnostic
from tools.szlint.rules import Rule

__all__ = ["SZ105"]

#: path fragments containing the public API surface.
SCOPE = (
    "repro/api/",
    "repro/core/compressor.py",
    "repro/chunked/tiled.py",
    "repro/chunked/streams.py",
)

#: named parameters (excluding self/cls, *args/**kwargs) a public entry
#: point may have before it must take a config object instead.
MAX_PLAIN_PARAMS = 5

_CONFIG_NAMES = {"config", "cfg"}
_CONFIG_ANNOTATIONS = {"SZConfig"}


def _annotation_name(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip()
    return None


class SZ105(Rule):
    rule_id = "SZ105"

    def applies(self, module: str) -> bool:
        return any(fragment in module for fragment in SCOPE)

    def check(
        self, path: str, module: str, tree: ast.Module, source: str
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            args = node.args
            params = list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            )
            if params and params[0].arg in {"self", "cls"}:
                params = params[1:]
            n_named = len(params)
            if n_named <= MAX_PLAIN_PARAMS:
                continue
            takes_config = any(
                p.arg in _CONFIG_NAMES
                or (_annotation_name(p.annotation) in _CONFIG_ANNOTATIONS)
                for p in params
            )
            if takes_config:
                continue
            out.append(
                Diagnostic(
                    path,
                    node.lineno,
                    self.rule_id,
                    f"public entry point `{node.name}` has {n_named} "
                    f"named parameters (> {MAX_PLAIN_PARAMS}) and no "
                    "SZConfig; extend SZConfig instead of the keyword "
                    "list",
                )
            )
        return out
