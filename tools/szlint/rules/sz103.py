"""SZ103 — deprecation isolation for the legacy bound-keyword shims.

PR 5 moved every entry point onto :class:`repro.api.SZConfig`; the old
``abs_bound=`` / ``rel_bound=`` keywords survive only as deprecated
shims that warn at runtime.  The CI ``deprecation-clean`` job proves the
*tested* paths are clean; this rule proves it statically for the whole
tree: no internal module may call a shim entry point with a legacy
keyword.

Exempt: the modules that *define* the shims (they must forward the
keywords to normalize them), and the normalizers themselves
(``SZConfig.from_kwargs`` / ``ErrorBound.from_args`` accept the
keywords by design).  Baseline compressors with their own
``abs_bound``-style APIs are not flagged because matching is by callee
name, limited to the shim entry points.
"""

from __future__ import annotations

import ast

from tools.szlint.asthelpers import callee_name, has_keyword
from tools.szlint.diagnostics import Diagnostic
from tools.szlint.rules import Rule

__all__ = ["SZ103"]

#: entry points whose abs_bound/rel_bound keywords are deprecated shims.
SHIM_CALLEES = {
    "compress",
    "compress_with_stats",
    "SZ14Compressor",
    "compress_tiled",
    "compress_file_tiled",
    "TiledWriter",
}

#: modules that define (and must forward) the shims.
EXEMPT_MODULES = (
    "repro/core/compressor.py",
    "repro/chunked/tiled.py",
    "repro/chunked/streams.py",
)

_LEGACY_KEYWORDS = ("abs_bound", "rel_bound")


class SZ103(Rule):
    rule_id = "SZ103"

    def applies(self, module: str) -> bool:
        return not module.endswith(EXEMPT_MODULES)

    def check(
        self, path: str, module: str, tree: ast.Module, source: str
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = callee_name(node)
            if name in SHIM_CALLEES and has_keyword(
                node, *_LEGACY_KEYWORDS
            ):
                out.append(
                    Diagnostic(
                        path,
                        node.lineno,
                        self.rule_id,
                        f"call to `{name}` with deprecated abs_bound/"
                        "rel_bound keywords; build an SZConfig "
                        "(SZConfig.from_kwargs) and pass config=",
                    )
                )
        return out
