"""SZ104 — zero-copy guard for the decode path.

PR 5's decode path hands out ``memoryview`` slices end to end; one
stray ``.tobytes()`` (or ``bytes(buf)``) silently reintroduces a full
payload copy and the perf gate only notices once the regression exceeds
its tolerance.  Inside decode-side functions this rule flags:

* ``x.tobytes()`` — materializes a memoryview/ndarray;
* ``bytes(x)`` where ``x`` is a name or attribute — copies a buffer
  (``bytes(5)`` and ``b"..."`` literals are fine).

Decode-side means: functions whose name contains ``decode``,
``decompress``, ``unpack`` or ``read``, and methods of classes named
``*Reader``/``*Source``.  Intentional copies (e.g. a fallback for
non-contiguous input) take a ``# szlint: ignore[SZ104]`` with a short
justification.
"""

from __future__ import annotations

import ast
import re

from tools.szlint.diagnostics import Diagnostic
from tools.szlint.rules import Rule

__all__ = ["SZ104"]

#: path fragments containing decode-path modules.
SCOPE = (
    "repro/core/",
    "repro/encoding/",
    "repro/chunked/",
    "repro/api/",
    "repro/parallel/",
)

_DECODE_FUNC = re.compile(r"decode|decompress|unpack|read", re.IGNORECASE)
_DECODE_CLASS = re.compile(r"Reader|Source")


class SZ104(Rule):
    rule_id = "SZ104"

    def applies(self, module: str) -> bool:
        return any(fragment in module for fragment in SCOPE)

    def check(
        self, path: str, module: str, tree: ast.Module, source: str
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []

        def scan(func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "tobytes"
                ):
                    out.append(
                        Diagnostic(
                            path,
                            node.lineno,
                            self.rule_id,
                            "`.tobytes()` copies the buffer inside the "
                            "decode path; keep the memoryview",
                        )
                    )
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "bytes"
                    and len(node.args) == 1
                    and isinstance(node.args[0], (ast.Name, ast.Attribute))
                ):
                    out.append(
                        Diagnostic(
                            path,
                            node.lineno,
                            self.rule_id,
                            "`bytes(...)` copies the buffer inside the "
                            "decode path; keep the memoryview",
                        )
                    )

        class _Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self._class_stack: list[str] = []

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                self._class_stack.append(node.name)
                self.generic_visit(node)
                self._class_stack.pop()

            def _visit_func(
                self, node: ast.FunctionDef | ast.AsyncFunctionDef
            ) -> None:
                in_reader_class = bool(
                    self._class_stack
                    and _DECODE_CLASS.search(self._class_stack[-1])
                )
                if in_reader_class or _DECODE_FUNC.search(node.name):
                    scan(node)
                else:
                    self.generic_visit(node)

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._visit_func(node)

            def visit_AsyncFunctionDef(
                self, node: ast.AsyncFunctionDef
            ) -> None:
                self._visit_func(node)

        _Visitor().visit(tree)
        return out
