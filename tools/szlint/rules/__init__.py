"""Rule registry for szlint.

Each rule is a class with a ``rule_id``, a path-based ``applies``
predicate (bypassed by the engine's ``force_scope`` for fixture tests),
a per-file ``check`` and an optional cross-file ``finalize``.
"""

from __future__ import annotations

import ast

from tools.szlint.diagnostics import Diagnostic

__all__ = ["Rule", "all_rules"]


class Rule:
    """Base class: subclasses override ``check`` (and maybe ``finalize``)."""

    rule_id = "SZ000"

    def applies(self, module: str) -> bool:
        """Whether this rule runs on ``module`` (posix path string)."""
        return True

    def check(
        self, path: str, module: str, tree: ast.Module, source: str
    ) -> list[Diagnostic]:
        return []

    def finalize(self) -> list[Diagnostic]:
        """Cross-file diagnostics, emitted after every file was checked."""
        return []


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule (stateful across files)."""
    from tools.szlint.rules.sz101 import SZ101
    from tools.szlint.rules.sz102 import SZ102
    from tools.szlint.rules.sz103 import SZ103
    from tools.szlint.rules.sz104 import SZ104
    from tools.szlint.rules.sz105 import SZ105
    from tools.szlint.rules.sz106 import SZ106

    return [SZ101(), SZ102(), SZ103(), SZ104(), SZ105(), SZ106()]
