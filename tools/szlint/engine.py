"""szlint engine: file collection, rule dispatch, suppression."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import ast

from tools.szlint.diagnostics import Diagnostic, is_suppressed, parse_ignores
from tools.szlint.rules import Rule, all_rules

__all__ = ["LintResult", "lint_paths"]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic]
    files_checked: int
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics and not self.errors

    def as_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "count": len(self.diagnostics),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "errors": self.errors,
        }


def _collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    seen: set[Path] = set()
    unique: list[Path] = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(f)
    return unique


def _module_key(path: Path) -> str:
    """Posix path string rules match their scope fragments against."""
    return path.as_posix()


def lint_paths(
    paths: list[Path],
    select: set[str] | None = None,
    force_scope: bool = False,
    rules: list[Rule] | None = None,
) -> LintResult:
    """Lint every ``*.py`` under ``paths`` with the SZ1xx rule pack.

    ``select`` restricts to the given rule IDs; ``force_scope`` runs
    every rule on every file regardless of its ``applies`` predicate
    (used by the fixture tests, where known-bad snippets live outside
    the rules' normal path scopes).
    """
    active = rules if rules is not None else all_rules()
    if select is not None:
        active = [r for r in active if r.rule_id in select]
    diagnostics: list[Diagnostic] = []
    errors: list[str] = []
    files = _collect_files(paths)
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            errors.append(f"{path}: {exc}")
            continue
        module = _module_key(path)
        ignores = parse_ignores(source)
        for rule in active:
            if not force_scope and not rule.applies(module):
                continue
            for diag in rule.check(str(path), module, tree, source):
                if not is_suppressed(diag, ignores):
                    diagnostics.append(diag)
    # Cross-file rules report after the whole tree was scanned; their
    # diagnostics honor ignore comments too.
    ignores_by_path: dict[str, dict[int, frozenset[str]]] = {}
    for path in files:
        try:
            ignores_by_path[str(path)] = parse_ignores(
                path.read_text(encoding="utf-8")
            )
        except OSError:
            ignores_by_path[str(path)] = {}
    for rule in active:
        for diag in rule.finalize():
            if not is_suppressed(diag, ignores_by_path.get(diag.path, {})):
                diagnostics.append(diag)
    diagnostics.sort()
    return LintResult(diagnostics, files_checked=len(files), errors=errors)
