"""szlint: repo-specific AST lint rules for the SZ-1.4 reproduction.

The golden-blob suite proves the codec's invariants at runtime; szlint
proves the cheap-to-check half of them statically, before a fixture ever
runs.  Rules (see ``tools/szlint/README.md`` for rationale):

* **SZ101** — writer/reader byte-width pairing in container modules.
* **SZ102** — determinism guard for encode/decode modules.
* **SZ103** — no internal callers of the legacy ``abs_bound``/``rel_bound``
  keyword shims.
* **SZ104** — no buffer copies (``.tobytes()`` / ``bytes(...)``) in the
  decode path.
* **SZ105** — public entry points take an :class:`~repro.api.SZConfig`
  instead of growing keyword lists.

Run as ``python -m tools.szlint src`` (``--json`` for machine output).
Suppress a finding with a trailing ``# szlint: ignore[SZ10x]`` comment.
"""

from __future__ import annotations

from tools.szlint.diagnostics import Diagnostic
from tools.szlint.engine import LintResult, lint_paths

__all__ = ["Diagnostic", "LintResult", "lint_paths"]
