"""Shared AST pattern-matching helpers for szlint rules."""

from __future__ import annotations

import ast

__all__ = [
    "callee_name",
    "dotted_name",
    "int_literal",
    "slice_width",
    "str_literal",
    "has_keyword",
]


def callee_name(call: ast.Call) -> str | None:
    """Terminal name of the called object: ``a.b.f(...)`` -> ``"f"``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(node: ast.expr) -> str | None:
    """Full dotted path of a Name/Attribute chain, else None."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def int_literal(node: ast.expr | None) -> int | None:
    """Value of an int constant (including unary minus), else None."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        if isinstance(node.value, bool):
            return None
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = int_literal(node.operand)
        if inner is not None:
            return -inner
    return None


def str_literal(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def has_keyword(call: ast.Call, *names: str) -> bool:
    return any(kw.arg in names for kw in call.keywords)


def _decompose(
    node: ast.expr, sign: int = 1
) -> tuple[list[tuple[int, str]], int] | None:
    """Split an additive expression into (signed opaque terms, int offset).

    ``8`` -> ([], 8); ``pos + 6`` -> ([(1, "pos")], 6);
    ``8 + 6 * i`` -> ([(1, <dump of 6*i>)], 8).  Opaque sub-expressions
    are keyed by their AST dump so two slice bounds sharing the same
    symbolic part compare equal.
    """
    lit = int_literal(node)
    if lit is not None:
        return [], sign * lit
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = _decompose(node.left, sign)
        rsign = sign if isinstance(node.op, ast.Add) else -sign
        right = _decompose(node.right, rsign)
        if left is None or right is None:
            return None
        return left[0] + right[0], left[1] + right[1]
    return [(sign, ast.dump(node))], 0


def slice_width(node: ast.expr) -> int | None:
    """Byte width of a statically sized slice ``buf[a:b]``.

    Handles ``buf[8:16]``, ``buf[pos : pos + 6]``,
    ``buf[p + 8 : p + 14]`` and ``blob[2 + 6*i : 8 + 6*i]`` — the idioms
    the container readers use.  Returns None when the two bounds do not
    share the same symbolic part, i.e. the width is not derivable.
    """
    if not isinstance(node, ast.Subscript):
        return None
    sl = node.slice
    if not isinstance(sl, ast.Slice) or sl.step is not None:
        return None
    if sl.lower is None or sl.upper is None:
        return None
    lower = _decompose(sl.lower)
    upper = _decompose(sl.upper)
    if lower is None or upper is None:
        return None
    if sorted(lower[0]) != sorted(upper[0]):
        return None
    width = upper[1] - lower[1]
    return width if width > 0 else None
