"""Diagnostic model and ``# szlint: ignore[...]`` comment handling."""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Diagnostic", "parse_ignores", "is_suppressed"]

_IGNORE_RE = re.compile(
    r"#\s*szlint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: rule ID, location and a human-readable message."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def parse_ignores(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule IDs suppressed on that line.

    ``# szlint: ignore`` (no bracket) suppresses every rule on its line
    and is represented by an empty frozenset.
    """
    ignores: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _IGNORE_RE.search(text)
        if m is None:
            continue
        rules = m.group("rules")
        if rules is None:
            ignores[lineno] = frozenset()
        else:
            ignores[lineno] = frozenset(
                r.strip() for r in rules.split(",") if r.strip()
            )
    return ignores


def is_suppressed(
    diag: Diagnostic, ignores: dict[int, frozenset[str]]
) -> bool:
    """True when an ignore comment on the diagnostic's line covers its rule."""
    rules = ignores.get(diag.line)
    if rules is None:
        return False
    return not rules or diag.rule in rules
